// Package report renders a reproduction report: it runs the paper's
// experiments and emits a markdown document with the measured values next
// to the paper's claims, machine-checkable evidence that the shapes hold.
package report

import (
	"fmt"
	"strings"
	"time"

	"vfreq/internal/experiments"
	"vfreq/internal/placement"
)

// Options configures a report run.
type Options struct {
	// Scale is the time scale of the frequency experiments (see
	// experiments.Scale). 0 defaults to 0.1.
	Scale float64
	// SkipEfficiency omits the long Fig. 10/11/14 runs.
	SkipEfficiency bool
}

// Check is one verified claim.
type Check struct {
	Artefact string
	Claim    string
	Measured string
	Pass     bool
}

// Report is the full result set.
type Report struct {
	Checks  []Check
	Elapsed time.Duration
}

// Passed counts successful checks.
func (r *Report) Passed() int {
	n := 0
	for _, c := range r.Checks {
		if c.Pass {
			n++
		}
	}
	return n
}

// Markdown renders the report.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Reproduction report\n\n%d/%d checks passed (%.1fs).\n\n",
		r.Passed(), len(r.Checks), r.Elapsed.Seconds())
	b.WriteString("| Artefact | Paper claim | Measured | Pass |\n|---|---|---|---|\n")
	for _, c := range r.Checks {
		mark := "✔"
		if !c.Pass {
			mark = "✘"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", c.Artefact, c.Claim, c.Measured, mark)
	}
	return b.String()
}

// Run executes the checks.
func Run(opts Options) (*Report, error) {
	scale := opts.Scale
	if scale <= 0 {
		scale = 0.1
	}
	start := time.Now()
	rep := &Report{}
	add := func(artefact, claim, measured string, pass bool) {
		rep.Checks = append(rep.Checks, Check{artefact, claim, measured, pass})
	}

	// CFS probes.
	if res, err := experiments.CFSExperimentA(5_000_000); err != nil {
		return nil, err
	} else {
		add("exp a)", "all vCPUs at the same speed",
			fmt.Sprintf("max/min spread %.3f", res.Spread), res.Spread < 1.05)
	}
	if res, err := experiments.CFSExperimentB(5_000_000); err != nil {
		return nil, err
	} else {
		add("exp b)", "1-vCPU VMs get 4/5 of resources",
			fmt.Sprintf("share %.2f", res.OneVCPUShare),
			res.OneVCPUShare > 0.78 && res.OneVCPUShare < 0.82)
	}

	// Frequency experiments.
	type freqCheck struct {
		id     string
		exp    experiments.FreqExperiment
		series map[string][2]float64 // name → [lo, hi] steady-state bounds
		claim  string
	}
	dur := func(e experiments.FreqExperiment) float64 {
		return float64(experiments.Scale(e, scale).DurationUs) / 1e6
	}
	checks := []freqCheck{
		{"fig6", experiments.Fig6(),
			map[string][2]float64{"small": {1400, 1800}, "large": {700, 950}},
			"CFS: small ≈2× large (per-VM shares)"},
		{"fig7", experiments.Fig7(),
			map[string][2]float64{"small": {450, 750}, "large": {1700, 2050}},
			"controlled: small ≈500, large ≈1800 MHz"},
		{"fig8", experiments.Fig8(),
			map[string][2]float64{"small": {1400, 1800}, "large": {700, 950}},
			"chiclet exec A, same shape"},
		{"fig9", experiments.Fig9(),
			map[string][2]float64{"small": {450, 750}, "large": {1700, 2050}},
			"chiclet controlled: 500/1800 MHz"},
		{"fig12", experiments.Fig12(),
			map[string][2]float64{"small": {1300, 2000}},
			"2nd eval exec A: small fastest"},
	}
	slaByID := map[string]map[string]float64{}
	for _, fc := range checks {
		res, err := experiments.Scale(fc.exp, scale).Run()
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", fc.id, err)
		}
		slaByID[fc.id] = res.SLAViolations
		d := dur(fc.exp)
		var vals []string
		pass := true
		for name, bounds := range fc.series {
			v := res.Rec.Series(name).MedianRange(d*2/3, d)
			vals = append(vals, fmt.Sprintf("%s=%.0f MHz", name, v))
			if v < bounds[0] || v > bounds[1] {
				pass = false
			}
		}
		add(fc.id, fc.claim, strings.Join(vals, ", "), pass)
	}
	// Predictability: the controller turns near-permanent guarantee
	// violations of the large class into transients.
	if a, ok := slaByID["fig6"]["large"]; ok {
		if b, ok := slaByID["fig7"]["large"]; ok {
			add("fig7 vs fig6", "controller makes large-class performance predictable",
				fmt.Sprintf("SLA violations A=%.0f%% → B=%.0f%%", 100*a, 100*b),
				a >= 0.8 && b <= 0.35)
		}
	}

	// Fig. 13: three plateaus while all classes run.
	{
		e := experiments.Scale(experiments.Fig13(), scale)
		res, err := e.Run()
		if err != nil {
			return nil, err
		}
		d := float64(e.DurationUs) / 1e6
		s := res.Rec.Series("small").MedianRange(d*0.45, d*0.62)
		m := res.Rec.Series("medium").MedianRange(d*0.45, d*0.62)
		l := res.Rec.Series("large").MedianRange(d*0.45, d*0.62)
		pass := s >= 450 && s <= 800 && m >= 1100 && m <= 1450 && l >= 1650 && l <= 2050
		add("fig13", "plateaus 500/1200/1800 MHz",
			fmt.Sprintf("%.0f/%.0f/%.0f MHz", s, m, l), pass)
	}

	// Efficiency experiments.
	if !opts.SkipEfficiency {
		a, bb := experiments.Fig10()
		resA, err := experiments.Scale(a, scale).Run()
		if err != nil {
			return nil, err
		}
		resB, err := experiments.Scale(bb, scale).Run()
		if err != nil {
			return nil, err
		}
		largeB := resB.MeanRateByClass("large")
		pass := len(largeB) >= 5
		min, max := 1e18, 0.0
		for _, v := range largeB {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if pass && (max-min)/max > 0.15 {
			pass = false
		}
		add("fig10", "controlled large rates stable across runs",
			fmt.Sprintf("spread %.1f%% over %d runs", 100*(max-min)/max, len(largeB)), pass)
		smallA := resA.MeanRateByClass("small")
		smallB := resB.MeanRateByClass("small")
		if len(smallA) > 1 && len(smallB) > 1 {
			ratio := smallB[1] / smallA[1]
			add("fig10", "first uncontended runs equal A vs B",
				fmt.Sprintf("B/A = %.2f", ratio), ratio > 0.85 && ratio < 1.15)
		}
	}

	// Placement.
	rows, err := experiments.RunPlacementComparison()
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		switch {
		case row.Policy.Mode == placement.CoreCount && row.Policy.Factor == 1 &&
			row.Algorithm == placement.BestFit:
			add("§IV-C", "classic constraint needs all 22 nodes",
				fmt.Sprintf("%d nodes", row.UsedNodes), row.UsedNodes == 22)
		case row.Policy.Mode == placement.CoreCount && row.Policy.Factor > 1:
			add("§IV-C", "×1.8 consolidation: 15 nodes, 28 large/chiclet, 36 small/chetemi",
				fmt.Sprintf("%d nodes, %d large/chiclet, %d small/chetemi",
					row.UsedNodes, row.MaxLargePerChiclet, row.MaxSmallPerChetemi),
				row.UsedNodes == 15 && row.MaxLargePerChiclet == 28 && row.MaxSmallPerChetemi == 36)
		case row.Policy.Mode == placement.VirtualFrequency && !row.Policy.CoreSplitting &&
			row.Algorithm == placement.BestFit:
			add("§IV-C", "Eq. 7 packs well below 22 nodes with ≤21 large/chiclet",
				fmt.Sprintf("%d nodes, %d large/chiclet", row.UsedNodes, row.MaxLargePerChiclet),
				row.UsedNodes < 18 && row.MaxLargePerChiclet <= 21)
		}
	}

	rep.Elapsed = time.Since(start)
	return rep, nil
}
