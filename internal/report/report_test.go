package report

import (
	"strings"
	"testing"
)

func TestRunAllChecksPass(t *testing.T) {
	rep, err := Run(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checks) < 10 {
		t.Fatalf("only %d checks ran", len(rep.Checks))
	}
	for _, c := range rep.Checks {
		if !c.Pass {
			t.Errorf("%s FAILED: claim %q, measured %q", c.Artefact, c.Claim, c.Measured)
		}
	}
	if rep.Passed() != len(rep.Checks) {
		t.Fatalf("%d/%d checks passed", rep.Passed(), len(rep.Checks))
	}
}

func TestMarkdownRendering(t *testing.T) {
	rep := &Report{Checks: []Check{
		{Artefact: "fig7", Claim: "small ≈500", Measured: "499 MHz", Pass: true},
		{Artefact: "figX", Claim: "impossible", Measured: "n/a", Pass: false},
	}}
	md := rep.Markdown()
	if !strings.Contains(md, "1/2 checks passed") {
		t.Fatalf("summary wrong:\n%s", md)
	}
	if !strings.Contains(md, "| fig7 | small ≈500 | 499 MHz | ✔ |") {
		t.Fatalf("pass row wrong:\n%s", md)
	}
	if !strings.Contains(md, "✘") {
		t.Fatalf("fail mark missing:\n%s", md)
	}
}

func TestSkipEfficiency(t *testing.T) {
	rep, err := Run(Options{Scale: 0.02, SkipEfficiency: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if c.Artefact == "fig10" {
			t.Fatal("efficiency check ran despite SkipEfficiency")
		}
	}
}
