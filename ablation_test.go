// Ablation benchmarks for the controller's design choices: the
// increase/decrease factors of the estimator (§III-B2), the auction
// window and credit economy (§III-B4), the history length of the trend,
// and the host's DVFS governor. Each reports the behavioural metric the
// paper argues about (convergence speed, wasted cycles, burst fairness)
// so `go test -bench=Ablation` quantifies the trade-offs.
package vfreq

import (
	"fmt"
	"testing"

	"vfreq/internal/core"
	"vfreq/internal/dvfs"
	"vfreq/internal/experiments"
	"vfreq/internal/host"
	"vfreq/internal/platform"
	"vfreq/internal/vm"
	"vfreq/internal/workload"
)

// convergencePeriods counts the control periods a saturated vCPU needs to
// grow its cap from idle to ≥95 % of a core under the given config.
func convergencePeriods(b *testing.B, cfg core.Config) int {
	b.Helper()
	periods := 0
	for i := 0; i < b.N; i++ {
		h := newScriptHost(1, 2400)
		h.addVM("v", 1, 2400)
		ctrl, err := core.New(h, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Warm-up + 5 idle periods so the cap decays.
		for k := 0; k < 6; k++ {
			if err := ctrl.Step(); err != nil {
				b.Fatal(err)
			}
		}
		// Saturated: each period the vCPU consumes exactly its cap.
		periods = 0
		for k := 0; k < 200; k++ {
			h.consume("v", 0, ctrl.VM("v").VCPUs[0].CapUs)
			if err := ctrl.Step(); err != nil {
				b.Fatal(err)
			}
			periods++
			if ctrl.VM("v").VCPUs[0].CapUs >= 950_000 {
				break
			}
		}
	}
	return periods
}

// The increase factor trades convergence speed against over-allocation:
// the paper picked 100 % ("the higher the increase factor, the faster the
// convergence... but also the higher the resource wastage").
func BenchmarkAblationIncreaseFactor(b *testing.B) {
	for _, factor := range []float64{0.3, 1.0, 3.0} {
		b.Run(fmt.Sprintf("factor_%.0f%%", factor*100), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.IncreaseFactor = factor
			p := convergencePeriods(b, cfg)
			b.ReportMetric(float64(p), "periods_to_converge")
		})
	}
}

// The decrease factor trades reclamation speed against oscillation after
// short dips: the paper picked 5 %.
func BenchmarkAblationDecreaseFactor(b *testing.B) {
	for _, factor := range []float64{0.05, 0.3, 0.8} {
		b.Run(fmt.Sprintf("factor_%.0f%%", factor*100), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.DecreaseFactor = factor
			var wasted, recoverPeriods float64
			for i := 0; i < b.N; i++ {
				h := newScriptHost(1, 2400)
				h.addVM("v", 1, 2400)
				ctrl, err := core.New(h, cfg)
				if err != nil {
					b.Fatal(err)
				}
				// Saturate, converge.
				if err := ctrl.Step(); err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 15; k++ {
					h.consume("v", 0, ctrl.VM("v").VCPUs[0].CapUs)
					if err := ctrl.Step(); err != nil {
						b.Fatal(err)
					}
				}
				// 3-period dip at 10 % usage: how many cycles stay
				// allocated-but-unused?
				wasted = 0
				for k := 0; k < 3; k++ {
					cap := ctrl.VM("v").VCPUs[0].CapUs
					use := int64(100_000)
					if use > cap {
						use = cap
					}
					h.consume("v", 0, use)
					wasted += float64(cap - use)
					if err := ctrl.Step(); err != nil {
						b.Fatal(err)
					}
				}
				// Demand returns: periods until the cap is back above
				// 90 % of a core (the paper's oscillation argument:
				// aggressive decrease makes this climb long).
				recoverPeriods = 0
				for k := 0; k < 100; k++ {
					if ctrl.VM("v").VCPUs[0].CapUs >= 900_000 {
						break
					}
					h.consume("v", 0, ctrl.VM("v").VCPUs[0].CapUs)
					if err := ctrl.Step(); err != nil {
						b.Fatal(err)
					}
					recoverPeriods++
				}
			}
			b.ReportMetric(wasted/1000, "wasted_kcycles_in_dip")
			b.ReportMetric(recoverPeriods, "periods_to_recover")
		})
	}
}

// The auction window prevents a rich VM from buying the whole market in
// one round ("a window is used to avoid that a rich VM steals all the
// cycles included in the market"). Three equally wealthy VMs compete for
// a market half the size of their combined demand; the metric is the
// biggest buyer's share of the sold cycles.
func BenchmarkAblationAuctionWindow(b *testing.B) {
	for _, window := range []int64{10_000, 100_000, 250_000} {
		b.Run(fmt.Sprintf("window_%dus", window), func(b *testing.B) {
			var topShare float64
			for i := 0; i < b.N; i++ {
				h := newScriptHost(1, 2400) // capacity 1e6 per period
				for k := 0; k < 3; k++ {
					h.addVM(fmt.Sprintf("vm%d", k), 1, 600) // C_i = 250000
				}
				cfg := core.DefaultConfig()
				cfg.WindowUs = window
				ctrl, err := core.New(h, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := ctrl.Step(); err != nil { // warm-up
					b.Fatal(err)
				}
				// Craft the contended state: every vCPU has a rising
				// history pressed against its 250000 cap (so the
				// estimate doubles to 500000) and a fat wallet. The
				// market of Eq. 6 is then 1e6 − 3×250000 = 250000,
				// against 3×250000 of demand.
				for k := 0; k < 3; k++ {
					st := ctrl.VM(fmt.Sprintf("vm%d", k))
					st.CreditUs = 1_000_000
					v := st.VCPUs[0]
					v.CapUs = 250_000
					for _, u := range []int64{100_000, 150_000, 200_000} {
						v.Hist.Push(u)
					}
					h.consume(st.Info.Name, 0, 245_000)
				}
				if err := ctrl.Step(); err != nil {
					b.Fatal(err)
				}
				var bought [3]float64
				var total float64
				for k := 0; k < 3; k++ {
					cap := ctrl.VM(fmt.Sprintf("vm%d", k)).VCPUs[0].CapUs
					if cap > 250_000 {
						bought[k] = float64(cap - 250_000)
						total += bought[k]
					}
				}
				topShare = 0
				for _, v := range bought {
					if total > 0 && v/total > topShare {
						topShare = v / total
					}
				}
			}
			b.ReportMetric(topShare, "top_buyer_market_share")
		})
	}
}

// The credit wallet cap bounds how long an idle VM can burst later; with
// no credits at all, stage 5 still distributes spare cycles but without
// the under-consumption priority.
func BenchmarkAblationCreditCap(b *testing.B) {
	for _, capPeriods := range []int64{1, 60, 0 /* unbounded */} {
		name := fmt.Sprintf("cap_%dperiods", capPeriods)
		if capPeriods == 0 {
			name = "cap_unbounded"
		}
		b.Run(name, func(b *testing.B) {
			var wallet float64
			for i := 0; i < b.N; i++ {
				h := newScriptHost(4, 2400)
				h.addVM("v", 2, 1200)
				cfg := core.DefaultConfig()
				cfg.CreditCapPeriods = capPeriods
				ctrl, err := core.New(h, cfg)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 120; k++ { // two minutes idle
					if err := ctrl.Step(); err != nil {
						b.Fatal(err)
					}
				}
				wallet = float64(ctrl.VM("v").CreditUs)
			}
			b.ReportMetric(wallet/1e6, "wallet_Mcycles")
		})
	}
}

// History length: longer windows smooth the Eq. 3 trend but slow the
// reaction to a genuine ramp.
func BenchmarkAblationHistoryLen(b *testing.B) {
	for _, n := range []int{2, 5, 20} {
		b.Run(fmt.Sprintf("n_%d", n), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.HistoryLen = n
			p := convergencePeriods(b, cfg)
			b.ReportMetric(float64(p), "periods_to_converge")
		})
	}
}

// DVFS governor: the paper notes CPUs are more energy-efficient at high
// frequency ("wasting compute power may actually lead to consume more
// energy"); compare node energy for the same Fig. 7 workload under
// different governors.
func BenchmarkAblationGovernor(b *testing.B) {
	for _, gov := range []string{dvfs.GovernorSchedutil, dvfs.GovernorPerformance, dvfs.GovernorOndemand} {
		b.Run(gov, func(b *testing.B) {
			e := experiments.Scale(experiments.Fig7(), 0.02)
			e.Node.Governor = gov
			var res *experiments.FreqResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = e.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EnergyJoules/1000, "energy_kJ")
			dur := float64(e.DurationUs) / 1e6
			b.ReportMetric(res.Rec.Series("large").MedianRange(dur*2/3, dur), "large_MHz")
		})
	}
}

// Cache contention (the paper's §V future work, quantified): with an LLC
// penalty active, the controller still delivers CPU-time guarantees but
// the attained virtual frequency erodes with machine load — the reason
// quotas alone cannot guarantee throughput.
func BenchmarkAblationCachePenalty(b *testing.B) {
	for _, penalty := range []float64{0, 0.15, 0.3} {
		b.Run(fmt.Sprintf("penalty_%.0f%%", penalty*100), func(b *testing.B) {
			e := experiments.Scale(experiments.Fig7(), 0.02)
			e.Node.CachePenalty = penalty
			var res *experiments.FreqResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = e.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			dur := float64(e.DurationUs) / 1e6
			b.ReportMetric(res.Rec.Series("large").MedianRange(dur*2/3, dur), "large_MHz")
			b.ReportMetric(res.Rec.Series("small").MedianRange(dur*2/3, dur), "small_MHz")
		})
	}
}

// Burst fraction (extension over the paper): a workload with 100 ms
// demand spikes per 200 ms can never consume more than half its cap
// without burst, so the paper's stable-case recalibration (est = u/0.95)
// shrinks its cap geometrically until it collapses to the minimum quota —
// the estimator assumes sub-period-uniform demand. With a full burst
// budget (cpu.max.burst = quota), off-spike windows bank enough bandwidth
// that the spikes run unthrottled, u tracks the cap, and the estimator
// stays converged: attained CPU rises ~30×. Partial burst (50 %) still
// collapses. Steady CPU-bound workloads (the paper's benchmarks) are
// unaffected by the knob.
func BenchmarkAblationBurstFraction(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 1.0} {
		b.Run(fmt.Sprintf("burst_%.0f%%", frac*100), func(b *testing.B) {
			var attainedUs int64
			for i := 0; i < b.N; i++ {
				machine, err := host.New(host.Spec{
					Name: "burst-bench", Cores: 2,
					MinMHz: 1200, MaxMHz: 2400, MemoryGB: 16,
					Governor: dvfs.GovernorPerformance,
					Power:    host.Chetemi().Power,
				})
				if err != nil {
					b.Fatal(err)
				}
				mgr, err := vm.NewManager(machine)
				if err != nil {
					b.Fatal(err)
				}
				spiky := &workload.Bursty{PeriodUs: 200_000, Duty: 0.5, High: 1, Low: 0}
				inst, err := mgr.Provision("spiky",
					vm.Template{Name: "spiky", VCPUs: 1, FreqMHz: 1200, MemoryGB: 1},
					[]workload.Source{spiky})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mgr.Provision("busy",
					vm.Template{Name: "busy", VCPUs: 2, FreqMHz: 1800, MemoryGB: 1},
					[]workload.Source{workload.Busy(), workload.Busy()}); err != nil {
					b.Fatal(err)
				}
				cfg := core.DefaultConfig()
				cfg.BurstFraction = frac
				ctrl, err := core.New(platform.NewSim(mgr), cfg)
				if err != nil {
					b.Fatal(err)
				}
				for step := 0; step < 30; step++ {
					machine.Advance(cfg.PeriodUs)
					if err := ctrl.Step(); err != nil {
						b.Fatal(err)
					}
				}
				before := inst.VCPUThread(0).UsageUs
				for step := 0; step < 30; step++ {
					machine.Advance(cfg.PeriodUs)
					if err := ctrl.Step(); err != nil {
						b.Fatal(err)
					}
				}
				attainedUs = inst.VCPUThread(0).UsageUs - before
			}
			b.ReportMetric(float64(attainedUs)/1000, "spiky_attained_ms")
		})
	}
}

// Control period: shorter periods react faster but cost proportionally
// more controller CPU (the paper's 5 ms every 1 s).
func BenchmarkAblationControlPeriod(b *testing.B) {
	for _, periodMs := range []int64{250, 1000, 4000} {
		b.Run(fmt.Sprintf("period_%dms", periodMs), func(b *testing.B) {
			e := experiments.Scale(experiments.Fig7(), 0.05)
			// Override the (already scaled) control period: periodMs
			// is expressed in full-scale milliseconds.
			cfg := e.Config
			cfg.PeriodUs = periodMs * 1000 * 5 / 100
			if cfg.PeriodUs < cfg.CgroupPeriodUs {
				cfg.CgroupPeriodUs = cfg.PeriodUs
			}
			e.Config = cfg
			var res *experiments.FreqResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = e.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			dur := float64(e.DurationUs) / 1e6
			b.ReportMetric(res.Rec.Series("small").MedianRange(dur*2/3, dur), "small_MHz")
			b.ReportMetric(float64(res.AvgStep.Microseconds()), "ctrl_step_µs")
		})
	}
}
